//===- tests/opt/FenceWeakenTest.cpp - Fence elimination/weakening tests ---------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
///
/// FenceWeaken's two rules — R1 (dominated by an earlier fence) and R2
/// (trailing, unobservable before ret) — their side conditions, the
/// acqrel demotions, and the unsafe twin that keeps acq parts "fresh"
/// across loads (the fence-based Fig 1).
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

TEST(FenceWeakenTest, DropsAcqFenceDominatedByAcqFence) {
  // Back-to-back acq fences: the second finds Acq still ⊥.
  Program P = parseProgramOrDie(R"(var d; var a atomic;
    func f { block 0: r := a.rlx; fence.acq; fence.acq; r2 := d.na;
                      print(r + r2); ret; }
    func g { block 0: d.na := 1; a.rlx := 1; ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[1].isFence());
  EXPECT_TRUE(B.instructions()[2].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, LoadBetweenAcqFencesKeepsBoth) {
  // The relaxed load banks a message view into Acq; the second fence
  // publishes it. Dropping it is exactly what the unsafe twin does.
  Program P = parseProgramOrDie(R"(var d; var a atomic;
    func f { block 0: fence.acq; r := a.rlx; fence.acq; r2 := d.na;
                      print(r + r2); ret; }
    func g { block 0: d.na := 1; a.rlx := 1; ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[0].isFence());
  EXPECT_TRUE(B.instructions()[2].isFence());
}

TEST(FenceWeakenTest, DropsRelFenceDominatedByRelFence) {
  // Register-only instructions leave V unmoved: the second snapshot is
  // the first one again. The trailing store defeats R2, isolating R1.
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: fence.rel; skip; fence.rel; x.na := 1; ret; }
    func g { block 0: r := x.na; print(r); ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[0].isFence());
  EXPECT_TRUE(B.instructions()[2].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, StoreBetweenRelFencesKeepsBoth) {
  // The store raises V (its own write timestamp): the second rel fence
  // snapshots something new.
  Program P = parseProgramOrDie(R"(var x; var y;
    func f { block 0: fence.rel; x.na := 1; fence.rel; y.na := 1; ret; }
    func g { block 0: r := x.na; r2 := y.na; print(r + r2); ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[0].isFence());
  EXPECT_TRUE(B.instructions()[2].isFence());
}

TEST(FenceWeakenTest, AcqrelDominatedOnAcqSideDemotesToRel) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: fence.acq; fence.acqrel; x.na := 1; ret; }
    func g { block 0: r := x.na; print(r); ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  ASSERT_TRUE(B.instructions()[1].isFence());
  EXPECT_EQ(B.instructions()[1].fenceMode(), FenceMode::REL);
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, TrailingAcqFenceIsDropped) {
  // R2: nothing after the fence consumes the view gain.
  Program P = parseProgramOrDie(R"(var d;
    func f { block 0: r := d.na; fence.acq; print(r); ret; } thread f;)");
  Program T = createFenceWeaken()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[1].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, TrailingRelFenceIsDroppedAcrossLoads) {
  // R2 rel side: loads may follow — only a store could attach the
  // snapshot to a message.
  Program P = parseProgramOrDie(R"(var x; var d;
    func f { block 0: x.na := 1; fence.rel; r := d.na; print(r); ret; }
    thread f;)");
  Program T = createFenceWeaken()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[1].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, TrailingAcqrelAboveLoadsDemotesToAcq) {
  // The rel side is unobservable (no store follows) but the acq side is
  // consumed by the trailing load: judge the sides separately.
  Program P = parseProgramOrDie(R"(var d; var a atomic;
    func f { block 0: r := a.rlx; fence.acqrel; r2 := d.na;
                      print(r + r2); ret; }
    func g { block 0: d.na := 1; a.rlx := 1; ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  ASSERT_TRUE(B.instructions()[1].isFence());
  EXPECT_EQ(B.instructions()[1].fenceMode(), FenceMode::ACQ);
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, FenceBeforeAStoreIsKept) {
  // A rel fence followed by a store is the publication idiom — never
  // dropped, even at the end of a block. (The consumer thread makes the
  // payload and flag shared.)
  Program P = parseProgramOrDie(R"(var d; var a atomic;
    func f { block 0: d.na := 1; fence.rel; a.rlx := 1; ret; }
    func g { block 0: r := a.rlx; r2 := d.na; print((r * 10) + r2); ret; }
    thread f; thread g;)");
  Program T = createFenceWeaken()->run(P);
  EXPECT_TRUE(T == P) << printProgram(T);
}

TEST(FenceWeakenTest, PrivateAccessesAreTransparentToBothRules) {
  // Every location is private to the single thread: its loads bank
  // nothing new, its stores raise V only at coordinates no peer ever
  // consults, so both fences are no-ops and die.
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: r := a.rlx; fence.acq; x.na := 1; fence.rel;
                      x.na := 2; print(r); ret; } thread f;)");
  Program T = createFenceWeaken()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[1].isSkip()) << printProgram(T);
  EXPECT_TRUE(B.instructions()[3].isSkip()) << printProgram(T);
  EXPECT_TRUE(expectPassCorrectAllEngines(*createFenceWeaken(), P));
}

TEST(FenceWeakenTest, UnsafeTwinDropsFenceAfterLoadAndBreaksRefinement) {
  // The fence-based Fig 1: with the reader's second acq fence gone, the
  // banked view of the relaxed flag read is never published, and the
  // payload read stays stale.
  Program P = parseProgramOrDie(R"(var d; var a atomic;
    func t0 { block 0: d.na := 1; fence.rel; a.rlx := 1; ret; }
    func t1 { block 0: fence.acq; r := a.rlx; fence.acq; r2 := d.na;
                       print((r * 10) + r2); ret; }
    thread t0; thread t1;)");
  Program T = createUnsafeFenceWeaken()->run(P);
  const BasicBlock &B = T.function(FuncId("t1")).block(0);
  ASSERT_TRUE(B.instructions()[2].isSkip()) << "unsafe variant should fire";

  BehaviorSet SrcB = exploreInterleaving(P);
  BehaviorSet TgtB = exploreInterleaving(T);
  ASSERT_TRUE(SrcB.Exhausted && TgtB.Exhausted);
  RefinementResult R = checkRefinement(TgtB, SrcB);
  EXPECT_FALSE(R.Holds) << "dropping the fence across a load is unsound";
  // flag=1, payload=0: source readers that saw the flag see the payload.
  EXPECT_FALSE(SrcB.hasDone({10}));
  EXPECT_TRUE(TgtB.hasDone({10}));
}

TEST(FenceWeakenTest, TransformedProgramsRoundTrip) {
  Program P = parseProgramOrDie(R"(var x; var d; var a atomic;
    func f { block 0: fence.acq; r := a.rlx; fence.acqrel; r2 := d.na;
                      fence.rel; x.na := r2; fence.acq; print(r); ret; }
    thread f;)");
  Program T = createFenceWeaken()->run(P);
  ParseResult R = parseProgram(printProgram(T));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(*R.Prog == T);
}

} // namespace
} // namespace psopt
