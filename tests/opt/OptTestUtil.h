//===- tests/opt/OptTestUtil.h - Shared helpers for pass tests --*- C++ -*-===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#ifndef PSOPT_TESTS_OPT_OPTTESTUTIL_H
#define PSOPT_TESTS_OPT_OPTTESTUTIL_H

#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "lang/Printer.h"
#include "lang/Validate.h"
#include "opt/Pass.h"
#include "race/WWRace.h"

#include <gtest/gtest.h>

namespace psopt {

/// Runs \p OptPass on \p Src and checks the full Def 6.4 contract:
/// the target validates, refines the source, and (Lm 6.2) stays
/// write-write race free when the source is.
inline void expectPassCorrect(const Pass &OptPass, const Program &Src,
                              const StepConfig &SC = StepConfig{}) {
  Program Tgt = OptPass.run(Src);
  EXPECT_TRUE(isValidProgram(Tgt))
      << OptPass.name() << " produced invalid code:\n" << printProgram(Tgt);

  BehaviorSet SrcB = exploreInterleaving(Src, SC);
  BehaviorSet TgtB = exploreInterleaving(Tgt, SC);
  ASSERT_TRUE(SrcB.Exhausted && TgtB.Exhausted) << "exploration cut off";
  RefinementResult R = checkRefinement(TgtB, SrcB);
  EXPECT_TRUE(R.Holds) << OptPass.name() << ": " << R.CounterExample
                       << "\ntarget:\n" << printProgram(Tgt)
                       << "\nsource behaviors:\n" << SrcB.str()
                       << "target behaviors:\n" << TgtB.str();

  RaceCheckResult SrcRace = checkWWRaceFreedom(Src, SC);
  if (SrcRace.RaceFree) {
    RaceCheckResult TgtRace = checkWWRaceFreedom(Tgt, SC);
    EXPECT_TRUE(TgtRace.RaceFree)
        << OptPass.name() << " broke ww-RF: "
        << (TgtRace.Witness ? TgtRace.Witness->Description : std::string());
  }
}

/// The function named "f" of \p P, for shape assertions (interned-id map
/// order is not source order, so "first" must be by name).
inline const Function &firstFunction(const Program &P) {
  return P.function(FuncId("f"));
}

} // namespace psopt

#endif // PSOPT_TESTS_OPT_OPTTESTUTIL_H
