//===- tests/opt/LICMTest.cpp - LInv / LICM tests (E4) ----------------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "litmus/Litmus.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

/// Counts non-atomic loads of \p X inside \p F.
unsigned countNaLoads(const Function &F, VarId X) {
  unsigned N = 0;
  for (const auto &[L, B] : F.blocks())
    for (const Instr &I : B.instructions())
      if (I.isLoad() && I.readMode() == ReadMode::NA && I.var() == X)
        ++N;
  return N;
}

TEST(LInvTest, HoistsInvariantRead) {
  // Fig 5(a): Csrc → Cm. LInv adds a preheader read; the body still loads.
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; } thread f;)");
  Program T = createLInv()->run(P);
  EXPECT_EQ(countNaLoads(firstFunction(T), VarId("x")), 2u)
      << printProgram(T);
  expectPassCorrect(*createLInv(), P);
}

TEST(LICMTest, FullLicmMovesLoadOutOfLoop) {
  // Fig 5(a): Csrc → Ctgt. After LInv ∘ CSE the body load is a register
  // copy; only the preheader load remains.
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; } thread f;)");
  Program T = createLICM()->run(P);
  EXPECT_EQ(countNaLoads(firstFunction(T), VarId("x")), 1u)
      << printProgram(T);
  expectPassCorrect(*createLICM(), P);
}

TEST(LICMTest, RefusesToHoistAcrossAcquire) {
  // Fig 1: the loop body contains an acquire spin; LICM must not hoist the
  // y read.
  Program P = litmus("fig1_acq_src").Prog;
  Program T = createLICM()->run(P);
  // The y load stays inside the loop: the body block (3) still loads y.
  EXPECT_EQ(countNaLoads(T.function(FuncId("foo")), VarId("y")), 1u);
  EXPECT_TRUE(T.function(FuncId("foo")).block(3).instructions()[0].isLoad());
  expectPassCorrect(*createLICM(), P);
}

TEST(LICMTest, UnsafeLicmReproducesFig1Unsoundness) {
  Program P = litmus("fig1_acq_src").Prog;
  Program T = createUnsafeLICM()->run(P);
  // The unsafe variant hoisted the y read out of the loop...
  EXPECT_TRUE(
      T.function(FuncId("foo")).block(3).instructions()[0].isAssign())
      << printProgram(T);
  // ... and the transformation is refuted by the refinement checker: the
  // target can print 0, the source only 1 (§1).
  BehaviorSet SrcB = exploreInterleaving(P);
  BehaviorSet TgtB = exploreInterleaving(T);
  RefinementResult R = checkRefinement(TgtB, SrcB);
  EXPECT_FALSE(R.Holds);
  EXPECT_TRUE(TgtB.hasDoneMultiset({0}));
  EXPECT_FALSE(SrcB.hasDoneMultiset({0}));
}

TEST(LICMTest, HoistsWhenSpinIsRelaxed) {
  // §1: with the acquire read changed to relaxed, the hoist becomes legal
  // and our LICM performs it.
  Program P = litmus("fig1_rlx_src").Prog;
  Program T = createLICM()->run(P);
  // The in-loop y load became a copy.
  EXPECT_TRUE(
      T.function(FuncId("foo")).block(3).instructions()[0].isAssign())
      << printProgram(T);
  expectPassCorrect(*createLICM(), P);
}

TEST(LICMTest, Fig5IntroducesRwRaceButStaysCorrect) {
  // Fig 5(b): hoisting in the guarded code introduces a read-write race
  // with g's x write — and is still a correct transformation.
  Program P = litmus("fig5_src").Prog;
  expectPassCorrect(*createLInv(), P);
  expectPassCorrect(*createLICM(), P);
}

TEST(LInvTest, RefusesWhenLoopStoresTheVariable) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; x.na := r2 + 1; r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; } thread f;)");
  Program T = createLInv()->run(P);
  EXPECT_TRUE(T == P) << printProgram(T);
}

TEST(LInvTest, RefusesWhenLoopContainsCas) {
  Program P = parseProgramOrDie(R"(var x; var l atomic;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r9 := cas(l, 0, 1, rlx, rlx); r2 := x.na;
                      r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; } thread f;)");
  Program T = createLInv()->run(P);
  EXPECT_TRUE(T == P);
}

TEST(LInvTest, RefusesWhenLoopContainsCall) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; call g, 4;
             block 4: r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; }
    func g { block 0: ret; }
    thread f;)");
  Program T = createLInv()->run(P);
  EXPECT_TRUE(T == P);
}

TEST(LInvTest, HoistsAcrossReleaseWrite) {
  // §7: LICM is allowed across a release write.
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: r1 := 0; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; a.rel := r1; r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; } thread f;)");
  Program T = createLICM()->run(P);
  EXPECT_TRUE(
      T.function(FuncId("f")).block(2).instructions()[0].isAssign())
      << printProgram(T);
  expectPassCorrect(*createLICM(), P);
}

TEST(LInvTest, ZeroTripLoopSpeculationIsSound) {
  // The hoisted read executes even when the loop does not (speculative
  // introduction of a redundant read, §2.5).
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := 5; jmp 1;
             block 1: be r1 < 2, 2, 3;
             block 2: r2 := x.na; r1 := r1 + 1; jmp 1;
             block 3: print(r2); ret; }
    func g { block 0: x.na := 9; ret; }
    thread f; thread g;)");
  expectPassCorrect(*createLICM(), P);
}

} // namespace
} // namespace psopt
