//===- tests/opt/DCETest.cpp - DCE tests (E5) ------------------------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Litmus.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

TEST(DCETest, EliminatesOverwrittenStore) {
  // §7.1 example (1): x := 1; x := 2  ⇝  skip; x := 2.
  Program P = litmus("fig16_src").Prog;
  Program T = createDCE()->run(P);
  const BasicBlock &B = T.function(FuncId("t1")).block(0);
  EXPECT_TRUE(B.instructions()[0].isSkip());
  EXPECT_TRUE(B.instructions()[1].isStore());
  // And the result is exactly the paper's target program.
  EXPECT_TRUE(T == litmus("fig16_tgt").Prog);
}

TEST(DCETest, Fig15ReleaseKeepsStore) {
  // The release rule forbids eliminating y := 2 in Fig 15.
  Program P = litmus("fig15_src").Prog;
  Program T = createDCE()->run(P);
  const BasicBlock &B = T.function(FuncId("t1")).block(0);
  EXPECT_TRUE(B.instructions()[0].isStore()) << "y := 2 must survive";
  expectPassCorrect(*createDCE(), P);
}

TEST(DCETest, UnsafeDCEEliminatesAcrossReleaseAndBreaksRefinement) {
  // Without the release rule the first store dies — and the refinement
  // checker refutes the transformation (E5).
  Program P = litmus("fig15_src").Prog;
  Program T = createUnsafeDCE()->run(P);
  const BasicBlock &B = T.function(FuncId("t1")).block(0);
  ASSERT_TRUE(B.instructions()[0].isSkip()) << "unsafe variant should fire";

  BehaviorSet SrcB = exploreInterleaving(P);
  BehaviorSet TgtB = exploreInterleaving(T);
  RefinementResult R = checkRefinement(TgtB, SrcB);
  EXPECT_FALSE(R.Holds) << "Fig 15: DCE across a release write is unsound";
}

TEST(DCETest, EliminatesDeadRegisterComputation) {
  Program P = parseProgramOrDie(R"(
    func f { block 0: r1 := 5; r1 := 6; print(r1); ret; } thread f;)");
  Program T = createDCE()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[0].isSkip());
}

TEST(DCETest, EliminatesDeadLoad) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r1 := x.na; r1 := 6; print(r1); ret; } thread f;)");
  Program T = createDCE()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[0].isSkip());
}

TEST(DCETest, KeepsAtomicAccesses) {
  Program P = parseProgramOrDie(R"(var a atomic;
    func f { block 0: r1 := a.rlx; r1 := 6; a.rlx := 3; print(r1); ret; }
    thread f;)");
  Program T = createDCE()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[0].isLoad()) << "atomic load kept";
  EXPECT_TRUE(B.instructions()[2].isStore()) << "atomic store kept";
}

TEST(DCETest, KeepsVisiblyDeadStoreReadByOtherThread) {
  // x := 1 looks dead to t1's own continuation, but the ret boundary keeps
  // it live (the paper's DCE also only eliminates writes that are dead in
  // the *sequential* continuation; trailing stores stay).
  Program P = parseProgramOrDie(R"(var x;
    func t1 { block 0: x.na := 1; ret; }
    func obs { block 0: r := x.na; print(r); ret; }
    thread t1; thread obs;)");
  Program T = createDCE()->run(P);
  EXPECT_TRUE(T.function(FuncId("t1")).block(0).instructions()[0].isStore());
}

TEST(DCETest, DeadStoreAcrossBasicBlocks) {
  // §7.2: "DCE we verified can eliminate dead writes across basic blocks".
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: x.na := 1; jmp 1;
             block 1: skip; jmp 2;
             block 2: x.na := 2; ret; } thread f;)");
  Program T = createDCE()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[0].isSkip());
}

TEST(DCETest, StoreLiveOnOnePathSurvives) {
  Program P = parseProgramOrDie(R"(var x; var c atomic;
    func f { block 0: x.na := 1; r := c.rlx; be r, 1, 2;
             block 1: r2 := x.na; print(r2); ret;
             block 2: x.na := 2; ret; } thread f;)");
  Program T = createDCE()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[0].isStore());
}

TEST(DCETest, CorrectOnFig15) {
  expectPassCorrect(*createDCE(), litmus("fig15_src").Prog);
}

TEST(DCETest, CorrectOnFig16) {
  expectPassCorrect(*createDCE(), litmus("fig16_src").Prog);
}

} // namespace
} // namespace psopt
