//===- tests/opt/PassPropertyTest.cpp - Registry-wide property harness ----------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
///
/// The shared property harness over the pass registry (DESIGN.md §12):
///
///  * every pass in the refinement sweep, run on 50 seeded random programs,
///    refines its source under the full engine matrix (jobs 1/8 × schedule
///    reduction on/off) and preserves ww-RF;
///  * every registered unsound twin is caught at least once per suite by
///    the differential fuzzer, on a pinned seed window so the catch is
///    deterministic and fast.
///
/// Both sweeps enumerate the registry, so a new pass (or twin) registered
/// in opt/Pass.cpp is swept here with no test edits.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

class PassRandomSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PassRandomSweep, RefinesFiftyRandomProgramsAcrossEngines) {
  std::unique_ptr<Pass> P = createPassByName(GetParam());
  ASSERT_TRUE(P) << "registry name did not resolve: " << GetParam();
  unsigned Checked = 0;
  for (unsigned Seed = 0; Seed < 50; ++Seed) {
    Program Src = generateRandomProgram(passSweepConfig(Seed));
    if (expectPassCorrectAllEngines(*P, Src))
      ++Checked;
    if (::testing::Test::HasFailure())
      break; // the failure message already carries the program
  }
  // Bound-hit skips must stay the exception, or the sweep quietly thins.
  EXPECT_GE(Checked, 40u) << "too many explorations hit the node bound";
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PassRandomSweep, [] {
      std::vector<std::string> Names;
      for (const PassInfo &Info : passRegistry())
        if (Info.InRefinementSweep)
          Names.push_back(Info.Name);
      return ::testing::ValuesIn(Names);
    }(),
    [](const ::testing::TestParamInfo<std::string> &I) { return I.param; });

/// One twin's deterministic catch window: the pipeline to drive and a
/// (seed, runs) pair under which the fuzzer's generator is known to
/// produce a program the twin miscompiles.
struct TwinCase {
  std::string Twin;                  ///< registry UnsafeName under test
  std::vector<std::string> Pipeline; ///< pipeline that exposes it
  std::uint64_t Seed;
  unsigned Runs;
};

class UnsafeTwinSweep : public ::testing::TestWithParam<TwinCase> {};

TEST_P(UnsafeTwinSweep, FuzzerCatchesTheTwinAtLeastOnce) {
  const TwinCase &TC = GetParam();
  FuzzConfig C;
  C.Seed = TC.Seed;
  C.Runs = TC.Runs;
  C.Shrink = false;
  C.Differential = false;
  C.Pipeline = TC.Pipeline;
  FuzzReport R = runFuzzer(C);
  EXPECT_GE(R.Failures.size(), 1u)
      << TC.Twin << " was never caught in " << TC.Runs
      << " runs from seed " << TC.Seed << " — the generator lost its bait?";
  for (const FuzzFailure &F : R.Failures)
    EXPECT_EQ(F.K, FuzzFailure::Kind::Refinement) << F.str();
}

// Seed windows found by scanning `psopt fuzz --runs=1`; each catches
// within a couple of runs so the whole sweep stays sub-second per twin.
// unsafe-linv is special: introducing a redundant read is sound by
// itself even across an acquire (§2.5, Fig 5(b)), so the twin only
// misbehaves once CSE forwards the hoisted value into the loop body —
// drive it through the unsafe-licm composition.
std::vector<TwinCase> twinCases() {
  std::vector<TwinCase> Cases;
  for (const PassInfo &Info : passRegistry()) {
    if (!Info.UnsafeName)
      continue;
    TwinCase TC;
    TC.Twin = Info.UnsafeName;
    TC.Pipeline = {Info.UnsafeName};
    TC.Seed = 1;
    TC.Runs = 16;
    if (TC.Twin == "unsafe-dce" || TC.Twin == "unsafe-rse") {
      TC.Seed = 11;
      TC.Runs = 2;
    } else if (TC.Twin == "unsafe-cse" || TC.Twin == "unsafe-licm" ||
               TC.Twin == "unsafe-reorder") {
      TC.Seed = 8;
      TC.Runs = 2;
    } else if (TC.Twin == "unsafe-fenceweaken") {
      TC.Seed = 3;
      TC.Runs = 2;
    } else if (TC.Twin == "unsafe-linv") {
      TC.Pipeline = {"unsafe-linv", "unsafe-cse"};
      TC.Seed = 8;
      TC.Runs = 2;
    }
    Cases.push_back(TC);
  }
  return Cases;
}

std::string twinCaseName(const ::testing::TestParamInfo<TwinCase> &I) {
  std::string Name = I.param.Twin;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Registry, UnsafeTwinSweep,
                         ::testing::ValuesIn(twinCases()), twinCaseName);

} // namespace
} // namespace psopt
