//===- tests/opt/StoreElimTest.cpp - Redundant store elimination tests -----------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
///
/// RSE, the write-side dual of DCE's Fig 15: a na store overwritten later
/// in its block dies, unless an intervening access, release write, rel
/// fence or CAS could publish or observe it first.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

TEST(StoreElimTest, EliminatesOverwrittenStore) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: x.na := 1; x.na := 2; ret; } thread f;)");
  Program T = createStoreElim()->run(P);
  const BasicBlock &B = firstFunction(T).block(0);
  EXPECT_TRUE(B.instructions()[0].isSkip());
  EXPECT_TRUE(B.instructions()[1].isStore());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createStoreElim(), P));
}

TEST(StoreElimTest, CrossesRegisterOnlyInstructions) {
  // Assigns, skips and prints touch no memory: the scan crosses them.
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: r := 5; x.na := 1; skip; print(r); r2 := r + 1;
                      x.na := r2; ret; } thread f;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[1].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createStoreElim(), P));
}

TEST(StoreElimTest, InterveningLoadKeepsStore) {
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: x.na := 1; r := x.na; x.na := 2; print(r); ret; }
    thread f;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(T == P) << printProgram(T);
}

TEST(StoreElimTest, ReleaseStoreKeepsStore) {
  // The Fig 15 dual: the release publishes x = 1, and an acquiring
  // reader may demand it; killing the store would let that reader see
  // the initial value instead. (The reader thread makes x shared — a
  // private x would waive the boundary.)
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: x.na := 1; a.rel := 1; x.na := 2; ret; }
    func g { block 0: r := a.acq; r2 := x.na; print(r2); ret; }
    thread f; thread g;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(T == P) << printProgram(T);
}

TEST(StoreElimTest, RelFenceKeepsStore) {
  // A rel-side fence publishes through any later relaxed store, so it is
  // the same boundary as a release write.
  for (const char *Mode : {"rel", "acqrel"}) {
    Program P = parseProgramOrDie(std::string(R"(var x; var a atomic;
      func f { block 0: x.na := 1; fence.)") + Mode +
                                  R"(; a.rlx := 1; x.na := 2; ret; }
      func g { block 0: r := a.acq; r2 := x.na; print(r2); ret; }
      thread f; thread g;)");
    Program T = createStoreElim()->run(P);
    EXPECT_TRUE(T == P) << Mode << ":\n" << printProgram(T);
  }
}

TEST(StoreElimTest, PrivateStoreDiesAcrossReleaseBoundaries) {
  // x is touched only by f's thread: no reader exists for the release or
  // the fence to publish x = 1 to, so both boundaries are waived and the
  // overwritten store dies.
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: x.na := 1; a.rel := 1; fence.rel; x.na := 2; ret; }
    func g { block 0: r := a.acq; print(r); ret; }
    thread f; thread g;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(T.function(FuncId("f")).block(0).instructions()[0].isSkip())
      << printProgram(T);
  EXPECT_TRUE(expectPassCorrectAllEngines(*createStoreElim(), P));
}

TEST(StoreElimTest, AcqFenceIsNoBoundary) {
  // An acq-side fence publishes nothing — the dying store stays dead.
  Program P = parseProgramOrDie(R"(var x;
    func f { block 0: x.na := 1; fence.acq; x.na := 2; ret; } thread f;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(firstFunction(T).block(0).instructions()[0].isSkip());
  EXPECT_TRUE(expectPassCorrectAllEngines(*createStoreElim(), P));
}

TEST(StoreElimTest, CasIsABarrierEvenForTheUnsafeTwin) {
  // A CAS write part may be a release; both variants stop at it. (The
  // reader thread makes x shared — for a private x the CAS would be
  // crossed like any other unobservable boundary.)
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: x.na := 1; r := cas(a, 0, 1, rlx, rlx); x.na := 2;
                      print(r); ret; }
    func g { block 0: r2 := x.na; print(r2); ret; }
    thread f; thread g;)");
  EXPECT_TRUE(createStoreElim()->run(P) == P);
  EXPECT_TRUE(createUnsafeStoreElim()->run(P) == P);
}

TEST(StoreElimTest, LeavesAtomicStoresAlone) {
  Program P = parseProgramOrDie(R"(var a atomic;
    func f { block 0: a.rlx := 1; a.rlx := 2; ret; } thread f;)");
  Program T = createStoreElim()->run(P);
  EXPECT_TRUE(T == P) << printProgram(T);
}

TEST(StoreElimTest, UnsafeTwinEliminatesAcrossReleaseAndBreaksRefinement) {
  // The message-passing publisher: with x := 1 gone, a reader that
  // acquires the flag may read the *initial* x — a source-impossible
  // behavior.
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func t0 { block 0: x.na := 1; a.rel := 1; x.na := 2; ret; }
    func t1 { block 0: r := a.acq; r2 := x.na;
                       print((r * 10) + r2); ret; }
    thread t0; thread t1;)");
  Program T = createUnsafeStoreElim()->run(P);
  ASSERT_TRUE(T.function(FuncId("t0")).block(0).instructions()[0].isSkip())
      << "unsafe variant should fire";

  BehaviorSet SrcB = exploreInterleaving(P);
  BehaviorSet TgtB = exploreInterleaving(T);
  ASSERT_TRUE(SrcB.Exhausted && TgtB.Exhausted);
  RefinementResult R = checkRefinement(TgtB, SrcB);
  EXPECT_FALSE(R.Holds) << "RSE across a release write is unsound";
  // flag=1, payload=0: only the target reads the initial value there.
  EXPECT_FALSE(SrcB.hasDone({10}));
  EXPECT_TRUE(TgtB.hasDone({10}));
}

TEST(StoreElimTest, TransformedProgramsRoundTrip) {
  Program P = parseProgramOrDie(R"(var x; var a atomic;
    func f { block 0: x.na := 1; fence.acq; x.na := 2; a.rel := 3; ret; }
    thread f;)");
  Program T = createStoreElim()->run(P);
  ParseResult R = parseProgram(printProgram(T));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(*R.Prog == T);
}

} // namespace
} // namespace psopt
