//===- tests/tools/CliTest.cpp - CLI driver integration tests ---------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace {

#ifndef PSOPT_CLI_PATH
#error "PSOPT_CLI_PATH must be defined by the build"
#endif

struct CliResult {
  int ExitCode;
  std::string Output;
};

CliResult runCli(const std::string &Args) {
  std::string Cmd = std::string(PSOPT_CLI_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 512> Buf;
  while (fgets(Buf.data(), Buf.size(), Pipe))
    Out += Buf.data();
  int Status = pclose(Pipe);
  return CliResult{WEXITSTATUS(Status), Out};
}

std::string writeTemp(const char *Name, const char *Contents) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream F(Path);
  F << Contents;
  return Path;
}

const char *MpProgram = R"(
var data;
var flag atomic;
func producer { block 0: data.na := 42; flag.rel := 1; ret; }
func consumer { block 0: r := flag.acq; be r == 1, 1, 2;
                block 1: v := data.na; print(v); ret;
                block 2: print(-1); ret; }
thread producer; thread consumer;
)";

const char *RacyProgram = R"(
var x;
func t1 { block 0: x.na := 1; ret; }
func t2 { block 0: x.na := 2; ret; }
thread t1; thread t2;
)";

TEST(CliTest, NoArgsShowsUsage) {
  CliResult R = runCli("");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(CliTest, ExploreListsBehaviors) {
  std::string P = writeTemp("cli_mp.psopt", MpProgram);
  CliResult R = runCli("explore " + P);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("[42] done"), std::string::npos);
  EXPECT_NE(R.Output.find("[-1] done"), std::string::npos);
  EXPECT_NE(R.Output.find("(exhaustive)"), std::string::npos);
}

TEST(CliTest, ExploreNonPreemptive) {
  std::string P = writeTemp("cli_mp2.psopt", MpProgram);
  CliResult R = runCli("explore --np " + P);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("[42] done"), std::string::npos);
}

TEST(CliTest, RaceVerdicts) {
  std::string Clean = writeTemp("cli_clean.psopt", MpProgram);
  CliResult R1 = runCli("race " + Clean);
  EXPECT_EQ(R1.ExitCode, 0);
  EXPECT_NE(R1.Output.find("ww-race-free"), std::string::npos);

  std::string Racy = writeTemp("cli_racy.psopt", RacyProgram);
  CliResult R2 = runCli("race " + Racy);
  EXPECT_EQ(R2.ExitCode, 1);
  EXPECT_NE(R2.Output.find("ww-race-FOUND"), std::string::npos);
  EXPECT_NE(R2.Output.find("witness:"), std::string::npos);
}

TEST(CliTest, LintCleanProgramExitsZero) {
  std::string P = writeTemp("cli_lint_clean.psopt", MpProgram);
  CliResult R = runCli("lint " + P);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("sync-order: flag flag"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("summary: 0 race candidates"), std::string::npos)
      << R.Output;
}

TEST(CliTest, LintRacyProgramExitsOne) {
  std::string P = writeTemp("cli_lint_racy.psopt", RacyProgram);
  CliResult R = runCli("lint " + P);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("race-candidate[ww]: x"), std::string::npos)
      << R.Output;
}

TEST(CliTest, LintJsonFormat) {
  std::string P = writeTemp("cli_lint_json.psopt", RacyProgram);
  CliResult R = runCli("lint --format=json " + P);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("\"race_candidates\": ["), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"kind\": \"ww\""), std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find("race-candidate["), std::string::npos)
      << "text rendering leaked into JSON mode:\n"
      << R.Output;
}

TEST(CliTest, ExploreReduceSettingsAgree) {
  std::string P = writeTemp("cli_reduce.psopt", MpProgram);
  CliResult On = runCli("explore --reduce=on " + P);
  CliResult Legacy = runCli("explore --reduce=legacy " + P);
  CliResult Off = runCli("explore --reduce=off " + P);
  EXPECT_EQ(On.ExitCode, 0);
  EXPECT_EQ(Legacy.ExitCode, 0);
  EXPECT_EQ(Off.ExitCode, 0);
  for (const CliResult *R : {&On, &Legacy, &Off}) {
    EXPECT_NE(R->Output.find("[42] done"), std::string::npos) << R->Output;
    EXPECT_NE(R->Output.find("[-1] done"), std::string::npos) << R->Output;
  }
}

TEST(CliTest, OptimizeRunsPasses) {
  std::string P = writeTemp("cli_opt.psopt", R"(
    var x;
    func f { block 0: r := 2 + 3; x.na := 9; x.na := r; print(r); ret; }
    thread f;
  )");
  CliResult R = runCli("optimize --passes=constprop,dce,simplifycfg " + P);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("x.na := 5"), std::string::npos)
      << R.Output; // constprop folded, dce killed x.na := 9
  EXPECT_EQ(R.Output.find("x.na := 9"), std::string::npos) << R.Output;
}

TEST(CliTest, RefineDetectsViolation) {
  std::string Src = writeTemp("cli_src.psopt", R"(
    func f { block 0: print(1); ret; } thread f;)");
  std::string TgtGood = writeTemp("cli_tgood.psopt", R"(
    func f { block 0: print(1); ret; } thread f;)");
  std::string TgtBad = writeTemp("cli_tbad.psopt", R"(
    func f { block 0: print(2); ret; } thread f;)");
  EXPECT_EQ(runCli("refine " + TgtGood + " " + Src).ExitCode, 0);
  CliResult R = runCli("refine " + TgtBad + " " + Src);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("FAILS"), std::string::npos);
}

TEST(CliTest, EquivReportsVerdict) {
  std::string P = writeTemp("cli_eq.psopt", MpProgram);
  CliResult R = runCli("equiv " + P);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("HOLDS"), std::string::npos);
}

TEST(CliTest, WitnessReconstructsExecution) {
  std::string P = writeTemp("cli_wit.psopt", MpProgram);
  CliResult R = runCli("witness " + P + " --trace=42 --end=done");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("W(rel,flag,1)"), std::string::npos);
  EXPECT_NE(R.Output.find("out(42)"), std::string::npos);
  CliResult R2 = runCli("witness " + P + " --trace=0 --end=done");
  EXPECT_EQ(R2.ExitCode, 1);
  EXPECT_NE(R2.Output.find("no execution"), std::string::npos);
}

TEST(CliTest, LitmusRegistry) {
  CliResult List = runCli("litmus");
  EXPECT_EQ(List.ExitCode, 0);
  EXPECT_NE(List.Output.find("sb"), std::string::npos);

  CliResult Run = runCli("litmus sb");
  EXPECT_EQ(Run.ExitCode, 0);
  EXPECT_NE(Run.Output.find("expectations: MET"), std::string::npos);

  EXPECT_EQ(runCli("litmus nonexistent").ExitCode, 2);
}

TEST(CliTest, ParseErrorsAreReported) {
  std::string P = writeTemp("cli_bad.psopt", "func f { oops");
  CliResult R = runCli("explore " + P);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("parse error"), std::string::npos);
}

TEST(CliTest, FuzzVerifiedPassesReportCleanCampaign) {
  CliResult R = runCli("fuzz --runs=5 --seed=7 --no-shrink");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("runs=5"), std::string::npos);
  EXPECT_NE(R.Output.find("failures=0"), std::string::npos);
  EXPECT_NE(R.Output.find("seed=7"), std::string::npos);
}

TEST(CliTest, FuzzCatchesUnsafePassAndPrintsSeedAndPipeline) {
  CliResult R = runCli("fuzz --runs=1 --seed=11 --passes=unsafe-dce "
                       "--no-shrink --no-differential");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("FAILURE[refinement]"), std::string::npos);
  EXPECT_NE(R.Output.find("seed=11"), std::string::npos);
  EXPECT_NE(R.Output.find("pipeline=unsafe-dce"), std::string::npos);
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path);
  std::string Out((std::istreambuf_iterator<char>(F)),
                  std::istreambuf_iterator<char>());
  return Out;
}

TEST(CliTest, TraceOutAndProgressRoundTrip) {
  std::string P = writeTemp("cli_trace_mp.psopt", MpProgram);
  std::string TracePath = std::string(::testing::TempDir()) + "cli_trace.json";
  CliResult R = runCli("explore --jobs=2 --trace-out=" + TracePath +
                       " --progress=1 " + P);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // explore's summary reports wall-clock and throughput.
  EXPECT_NE(R.Output.find("wall="), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("nodes/s)"), std::string::npos) << R.Output;
  // The heartbeat always fires at least once (the final sample).
  EXPECT_NE(R.Output.find("[psopt] final"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("cache-hit="), std::string::npos) << R.Output;

  std::string Trace = slurp(TracePath);
  ASSERT_FALSE(Trace.empty());
  // A Chrome trace-event file with per-worker spans and the heartbeat's
  // counter series.
  EXPECT_EQ(Trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(Trace.find("\"name\":\"worker\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"name\":\"search\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"cat\":\"progress\""), std::string::npos) << Trace;
  std::remove(TracePath.c_str());
}

TEST(CliTest, FuzzEmitsOnePerRunJsonlRecord) {
  std::string JsonlPath = std::string(::testing::TempDir()) + "cli_fuzz.jsonl";
  CliResult R = runCli("fuzz --runs=3 --seed=5 --passes=dce --no-shrink "
                       "--no-differential --trace-jsonl=" + JsonlPath);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::string Jsonl = slurp(JsonlPath);
  std::size_t Records = 0, Pos = 0;
  const std::string Needle = "\"cat\":\"fuzz\",\"name\":\"run\"";
  while ((Pos = Jsonl.find(Needle, Pos)) != std::string::npos) {
    ++Records;
    ++Pos;
  }
  EXPECT_EQ(Records, 3u) << Jsonl;
  // Per-run records carry the replay coordinates and run-local deltas.
  EXPECT_NE(Jsonl.find("\"seed\":5"), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"pipeline\":\"dce\""), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"verdict\":\"ok\""), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"nodes\":"), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"duration_ms\":"), std::string::npos) << Jsonl;
  std::remove(JsonlPath.c_str());
}

TEST(CliTest, StatsFormatJson) {
  std::string P = writeTemp("cli_stats_mp.psopt", MpProgram);
  CliResult R = runCli("explore --stats-format=json " + P);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("{\"counters\": {"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"timers\": {"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"explore.nodes\": "), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"explore.search\": {\"seconds\": "),
            std::string::npos)
      << R.Output;
}

TEST(CliTest, TelemetryFlagsAreGlobal) {
  // --stats is accepted by every subcommand, not just the search ones.
  std::string P = writeTemp("cli_stats_lint.psopt", MpProgram);
  CliResult Lint = runCli("lint --stats " + P);
  EXPECT_EQ(Lint.ExitCode, 0) << Lint.Output;
  CliResult Opt = runCli("optimize --passes=dce --stats " + P);
  EXPECT_EQ(Opt.ExitCode, 0) << Opt.Output;
  EXPECT_NE(Opt.Output.find("opt.dce = "), std::string::npos) << Opt.Output;
  // Unknown flags are still rejected.
  EXPECT_EQ(runCli("lint --jobs=2 " + P).ExitCode, 2);
}

TEST(CliTest, FuzzReplaysTheCheckedInCorpus) {
  CliResult R = runCli(std::string("fuzz --replay=") + PSOPT_CORPUS_DIR);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("0 mismatches"), std::string::npos);
  // Satellite contract: every replay line names the seed and pipeline.
  EXPECT_NE(R.Output.find("seed="), std::string::npos);
  EXPECT_NE(R.Output.find("pipeline="), std::string::npos);
}

} // namespace
