//===- tests/fuzz/CorpusTest.cpp - Reproducer format and replay -----------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "lang/Parser.h"
#include "litmus/Litmus.h"
#include "support/PassTestSupport.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace psopt {
namespace {

CorpusEntry fig15Entry() {
  CorpusEntry E;
  E.Name = "fig15_unsafe_dce";
  E.Seed = 42;
  E.Pipeline = {"unsafe-dce"};
  E.ExpectFail = true;
  E.Note = "release write must keep the payload store alive";
  E.Prog = litmus("fig15_src").Prog;
  return E;
}

TEST(CorpusTest, RenderParseRoundTrip) {
  CorpusEntry E = fig15Entry();
  std::string Text = renderCorpusEntry(E);
  std::string Err;
  std::optional<CorpusEntry> Back = parseCorpusEntry(Text, Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->Name, E.Name);
  EXPECT_EQ(Back->Seed, E.Seed);
  EXPECT_EQ(Back->Pipeline, E.Pipeline);
  EXPECT_EQ(Back->ExpectFail, E.ExpectFail);
  EXPECT_EQ(Back->Promises, E.Promises);
  EXPECT_EQ(Back->Note, E.Note);
  EXPECT_TRUE(Back->Prog == E.Prog);
}

TEST(CorpusTest, ReproducerIsAPlainProgramToo) {
  // The metadata header is ordinary comments: the reproducer file must
  // parse as a standalone program with the same meaning.
  std::string Text = renderCorpusEntry(fig15Entry());
  ParseResult R = parseProgram(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(*R.Prog == litmus("fig15_src").Prog);
}

TEST(CorpusTest, ParseRejectsMalformedHeaders) {
  std::string Err;
  std::string Body = "\nfunc f { block 0: ret; }\nthread f;\n";

  EXPECT_FALSE(parseCorpusEntry("# pipeline: dce\n# expect: fail\n" + Body,
                                Err));
  EXPECT_NE(Err.find("psopt-fuzz reproducer"), std::string::npos);

  EXPECT_FALSE(parseCorpusEntry(
      "# psopt-fuzz reproducer v1\n# expect: fail\n" + Body, Err));
  EXPECT_NE(Err.find("pipeline"), std::string::npos);

  EXPECT_FALSE(parseCorpusEntry("# psopt-fuzz reproducer v1\n# pipeline: "
                                "dce\n# expect: maybe\n" + Body,
                                Err));
  EXPECT_NE(Err.find("expect"), std::string::npos);

  EXPECT_FALSE(parseCorpusEntry("# psopt-fuzz reproducer v1\n# pipeline: "
                                "dce\n# expect: fail\n# seed: banana\n" +
                                    Body,
                                Err));
  EXPECT_NE(Err.find("seed"), std::string::npos);

  EXPECT_FALSE(parseCorpusEntry("# psopt-fuzz reproducer v1\n# pipeline: "
                                "dce\n# expect: fail\n# color: red\n" + Body,
                                Err));
  EXPECT_NE(Err.find("unknown"), std::string::npos);
}

TEST(CorpusTest, StoreLoadListRoundTrip) {
  std::string Dir = ::testing::TempDir() + "corpus_test_dir";
  std::filesystem::create_directories(Dir);
  CorpusEntry E = fig15Entry();
  ASSERT_TRUE(storeCorpusEntry(E, Dir + "/b_second.rtl"));
  CorpusEntry Anon = E;
  Anon.Name.clear(); // name must default from the filename
  ASSERT_TRUE(storeCorpusEntry(Anon, Dir + "/a_first.rtl"));
  // Non-.rtl files are ignored.
  std::ofstream(Dir + "/README.md") << "not a reproducer";

  std::vector<std::string> Files = listCorpusFiles(Dir);
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_NE(Files[0].find("a_first"), std::string::npos); // sorted
  std::string Err;
  std::optional<CorpusEntry> First = loadCorpusEntry(Files[0], Err);
  ASSERT_TRUE(First.has_value()) << Err;
  EXPECT_EQ(First->Name, "a_first");
}

TEST(CorpusTest, ReplayMatchesExpectations) {
  ReplayConfig C;

  // Fig 15 + unsafe DCE: refinement must fail, which *matches* the entry.
  CorpusEntry Bad = fig15Entry();
  ReplayVerdict V1 = replayCorpusEntry(Bad, C);
  EXPECT_FALSE(V1.RefinementHolds);
  EXPECT_TRUE(V1.Match) << V1.Detail;

  // The same program under the *safe* DCE must hold.
  CorpusEntry Good = fig15Entry();
  Good.Pipeline = {"dce"};
  Good.ExpectFail = false;
  ReplayVerdict V2 = replayCorpusEntry(Good, C);
  EXPECT_TRUE(V2.RefinementHolds) << V2.Detail;
  EXPECT_TRUE(V2.Match);

  // A stale entry whose failure got fixed must be flagged as a mismatch.
  CorpusEntry Stale = Good;
  Stale.ExpectFail = true;
  EXPECT_FALSE(replayCorpusEntry(Stale, C).Match);

  // Unknown passes are reported, not crashed on.
  CorpusEntry Unknown = fig15Entry();
  Unknown.Pipeline = {"no-such-pass"};
  ReplayVerdict V3 = replayCorpusEntry(Unknown, C);
  EXPECT_FALSE(V3.Match);
  EXPECT_NE(V3.Detail.find("no-such-pass"), std::string::npos);
}

} // namespace
} // namespace psopt
