//===- tests/fuzz/FuzzerTest.cpp - Differential fuzzer end to end ---------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "lang/Printer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

namespace psopt {
namespace {

TEST(FuzzerTest, RunSeedDerivation) {
  // Run 0 is the identity: a seed printed in a failure report replays
  // directly with --seed=<logged> --runs=1.
  EXPECT_EQ(fuzzRunSeed(1, 0), 1u);
  EXPECT_EQ(fuzzRunSeed(123456789, 0), 123456789u);
  // Later runs scramble and don't collide in a short campaign.
  std::set<std::uint64_t> Seen;
  for (unsigned Run = 0; Run < 100; ++Run)
    Seen.insert(fuzzRunSeed(1, Run));
  EXPECT_EQ(Seen.size(), 100u);
  EXPECT_NE(fuzzRunSeed(1, 1), fuzzRunSeed(2, 1));
}

TEST(FuzzerTest, VerifiedPassesSurviveACampaign) {
  FuzzConfig C;
  C.Seed = 5;
  C.Runs = 12;
  C.Shrink = false;
  FuzzReport R = runFuzzer(C);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Runs, 12u);
  EXPECT_EQ(R.BaseSeed, 5u);
  // The summary line always names the base seed.
  EXPECT_NE(R.str().find("seed=5"), std::string::npos);
}

TEST(FuzzerTest, UnsafeDcePipelineYieldsAShrunkReproducer) {
  FuzzConfig C;
  C.Seed = 11; // known to produce the MP shape on the first run
  C.Runs = 1;
  C.Differential = false;
  C.Pipeline = {"unsafe-dce"};
  std::string Dir = ::testing::TempDir() + "fuzzer_test_corpus";
  std::filesystem::create_directories(Dir);
  C.CorpusDir = Dir;

  FuzzReport R = runFuzzer(C);
  ASSERT_EQ(R.Failures.size(), 1u) << R.str();
  const FuzzFailure &F = R.Failures[0];
  EXPECT_EQ(F.K, FuzzFailure::Kind::Refinement);
  EXPECT_EQ(F.Seed, 11u);
  EXPECT_EQ(F.Pipeline, std::vector<std::string>{"unsafe-dce"});
  EXPECT_LE(F.InstrsAfter, 8u) << F.str();
  EXPECT_LT(F.InstrsAfter, F.InstrsBefore);
  // The failure block names the seed, the pipeline, and the witness check.
  std::string S = F.str();
  EXPECT_NE(S.find("seed=11"), std::string::npos);
  EXPECT_NE(S.find("pipeline=unsafe-dce"), std::string::npos);
  EXPECT_NE(F.Detail.find("witness"), std::string::npos) << F.Detail;

  // A reproducer landed in the corpus and replays to the same verdict.
  ASSERT_FALSE(F.ReproPath.empty());
  std::string Err;
  std::optional<CorpusEntry> E = loadCorpusEntry(F.ReproPath, Err);
  ASSERT_TRUE(E.has_value()) << Err;
  EXPECT_EQ(E->Seed, 11u);
  ReplayVerdict V = replayCorpusEntry(*E, ReplayConfig{});
  EXPECT_TRUE(V.Match) << V.Detail;
  EXPECT_FALSE(V.RefinementHolds);
}

TEST(FuzzerTest, CampaignsAreDeterministic) {
  FuzzConfig C;
  C.Seed = 11;
  C.Runs = 1;
  C.Differential = false;
  C.Pipeline = {"unsafe-dce"};
  FuzzReport A = runFuzzer(C);
  FuzzReport B = runFuzzer(C);
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  ASSERT_EQ(A.Failures.size(), 1u);
  EXPECT_EQ(A.Failures[0].Seed, B.Failures[0].Seed);
  EXPECT_EQ(printProgram(A.Failures[0].Shrunk),
            printProgram(B.Failures[0].Shrunk));
}

TEST(FuzzerTest, TimeBudgetCutsTheCampaignShort) {
  FuzzConfig C;
  C.Seed = 3;
  C.Runs = 100000;
  C.TimeBudgetSec = 1;
  C.Shrink = false;
  C.Differential = false;
  FuzzReport R = runFuzzer(C);
  EXPECT_LT(R.Runs, 100000u);
}

} // namespace
} // namespace psopt
