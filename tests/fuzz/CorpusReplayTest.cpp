//===- tests/fuzz/CorpusReplayTest.cpp - Checked-in corpus stays green ----------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
///
/// Replays every reproducer checked into tests/corpus/ (the build passes
/// the directory as PSOPT_CORPUS_DIR) and checks its recorded verdict —
/// expect-fail entries must still fail refinement, expect-hold entries
/// must still hold — under every engine configuration: sequential and
/// jobs=8, certification cache on and off. A regression in a pass, the
/// explorer, or either engine dimension shows up here as a mismatch on a
/// minimized, named program.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <gtest/gtest.h>

#include <cctype>

namespace psopt {
namespace {

#ifndef PSOPT_CORPUS_DIR
#error "PSOPT_CORPUS_DIR must be defined by the build"
#endif

class CorpusReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplayTest, VerdictStableAcrossEngines) {
  std::string Err;
  std::optional<CorpusEntry> E = loadCorpusEntry(GetParam(), Err);
  ASSERT_TRUE(E.has_value()) << Err;

  for (unsigned Jobs : {1u, 8u})
    for (bool Cache : {true, false}) {
      ReplayConfig C;
      C.Jobs = Jobs;
      C.CertCache = Cache;
      ReplayVerdict V = replayCorpusEntry(*E, C);
      EXPECT_TRUE(V.Match)
          << E->Name << " (jobs=" << Jobs << " cert-cache=" << Cache
          << "): expected refinement to "
          << (E->ExpectFail ? "fail" : "hold") << ", got: " << V.Detail;
    }
}

std::string testName(const ::testing::TestParamInfo<std::string> &Info) {
  std::string Name = Info.param;
  std::size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  std::string Out;
  for (char C : Name)
    Out += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplayTest,
                         ::testing::ValuesIn(listCorpusFiles(PSOPT_CORPUS_DIR)),
                         testName);

// The corpus is meant to grow; an empty directory means the build is
// pointing somewhere wrong.
TEST(CorpusInventoryTest, CorpusIsNonTrivial) {
  EXPECT_GE(listCorpusFiles(PSOPT_CORPUS_DIR).size(), 10u);
}

} // namespace
} // namespace psopt
