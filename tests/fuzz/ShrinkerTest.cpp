//===- tests/fuzz/ShrinkerTest.cpp - Delta-debugging shrinker -------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "explore/Refinement.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/Validate.h"
#include "litmus/Litmus.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

namespace psopt {
namespace {

Program parse(const char *Text) {
  ParseResult R = parseProgram(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return *R.Prog;
}

/// True while the program still stores the constant 7 somewhere — a cheap
/// structural stand-in for "the bug is still present".
bool storesSeven(const Program &P) {
  for (const auto &[F, Fn] : P.code())
    for (const auto &[L, B] : Fn.blocks())
      for (const Instr &I : B.instructions())
        if (I.isStore() && I.expr()->kind() == Expr::Kind::Const &&
            I.expr()->constValue() == 7)
          return true;
  return false;
}

TEST(ShrinkerTest, StripsEverythingIrrelevant) {
  Program P = parse(R"(
    var x; var y; var a atomic;
    func t0 { block 0: x.na := 7; y.na := 3; r0 := a.acq; print(r0); ret; }
    func t1 { block 0: a.rel := 1; y.na := 2; r1 := 1 + 2; ret; }
    thread t0; thread t1;
  )");
  ASSERT_TRUE(storesSeven(P));

  ShrinkResult R = shrinkProgram(P, storesSeven);
  EXPECT_TRUE(storesSeven(R.Prog));
  EXPECT_TRUE(isValidProgram(R.Prog));
  EXPECT_LT(R.InstrsAfter, R.InstrsBefore);
  // Only the x.na := 7 store is load-bearing; everything else — including
  // the second thread — must go.
  EXPECT_EQ(R.InstrsAfter, 1u);
  EXPECT_EQ(R.Prog.threads().size(), 1u);
}

TEST(ShrinkerTest, WeakensOrderingsAndDemotesCas) {
  Program P = parse(R"(
    var a atomic;
    func t0 { block 0: r0 := a.acq; r1 := cas(a, 0, 7, acq, rel); a.rel := 7;
              print(r0); ret; }
    thread t0;
  )");
  auto StoresSevenAtomically = [](const Program &Q) {
    for (const auto &[F, Fn] : Q.code())
      for (const auto &[L, B] : Fn.blocks())
        for (const Instr &I : B.instructions())
          if (I.isStore() && I.expr()->kind() == Expr::Kind::Const &&
              I.expr()->constValue() == 7)
            return true;
    return false;
  };
  ShrinkResult R = shrinkProgram(P, StoresSevenAtomically);
  EXPECT_TRUE(isValidProgram(R.Prog));
  // The CAS is demoted to a load (then dropped) and the surviving store
  // weakens rel -> rlx: no acq/rel access may remain.
  for (const auto &[F, Fn] : R.Prog.code())
    for (const auto &[L, B] : Fn.blocks())
      for (const Instr &I : B.instructions()) {
        EXPECT_FALSE(I.isCas());
        if (I.isLoad())
          EXPECT_NE(I.readMode(), ReadMode::ACQ);
        if (I.isStore())
          EXPECT_NE(I.writeMode(), WriteMode::REL);
      }
}

TEST(ShrinkerTest, RespectsCheckBudget) {
  Program P = parse(R"(
    var x;
    func t0 { block 0: x.na := 7; x.na := 7; x.na := 7; x.na := 7; ret; }
    thread t0;
  )");
  ShrinkConfig C;
  C.MaxChecks = 2;
  ShrinkResult R = shrinkProgram(P, storesSeven, C);
  EXPECT_LE(R.Checks, 2u);
  EXPECT_TRUE(storesSeven(R.Prog));
}

TEST(ShrinkerTest, MinimizesFig15UnderTheRefinementOracle) {
  // The real use: shrink Fig 15's source under "unsafe DCE still breaks
  // refinement". The litmus program is already minimal-ish; the shrinker
  // must keep it failing and not blow the ≤ 8 instruction budget the
  // fuzzer's acceptance bar uses.
  const Program &Src = litmus("fig15_src").Prog;
  std::unique_ptr<Pass> Bad = createPassByName("unsafe-dce");
  ASSERT_NE(Bad, nullptr);
  auto StillFails = [&](const Program &P) {
    Program Tgt = Bad->run(P);
    if (!isValidProgram(Tgt))
      return false;
    RefinementResult R = checkRefinement(Tgt, P);
    return R.Exact && !R.Holds;
  };
  ASSERT_TRUE(StillFails(Src));
  ShrinkResult R = shrinkProgram(Src, StillFails);
  EXPECT_TRUE(StillFails(R.Prog));
  EXPECT_LE(R.InstrsAfter, 8u) << printProgram(R.Prog);
}

} // namespace
} // namespace psopt
