//===- examples/simulation.cpp - The §6 simulation framework in action -------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the thread-local simulation checker on the paper's proofs:
//  * the Reorder example (Fig 14d) verified with the identity invariant
//    Iid, against an interfering environment;
//  * the DCE example (§7.1 example (1)) verified with Idce — and *not*
//    provable with Iid, which is the paper's point about invariant choice;
//  * the Fig 16 ablation: dropping Idce's unused-interval clause lets a
//    gap-free environment write break the lockstep proof.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "sim/SimChecker.h"

#include <cstdio>

using namespace psopt;

static void show(const char *What, const SimResult &R) {
  std::printf("%-46s %s  (%llu configurations)\n", What,
              R.Holds ? "SIMULATES" : "REFUTED",
              static_cast<unsigned long long>(R.ConfigsVisited));
  if (!R.Holds)
    std::printf("    reason: %s\n", R.FailReason.c_str());
}

int main() {
  // --- Reorder (§2.3 / Fig 14d) -------------------------------------------
  Program ReorderSrc = parseProgramOrDie(R"(var x; var y;
    func f { block 0: r := x.na; y.na := 2; ret; } thread f;)");
  Program ReorderTgt = parseProgramOrDie(R"(var x; var y;
    func f { block 0: y.na := 2; r := x.na; ret; } thread f;)");

  auto Iid = createIdentityInvariant();
  std::vector<EnvAction> Racy{{"env writes x := 7", VarId("x"), 7}};
  show("Reorder with Iid, racy environment:",
       checkThreadSimulation(ReorderTgt, ReorderSrc, FuncId("f"), *Iid,
                             Racy));

  // --- DCE (§7.1 example (1) / Fig 16) -------------------------------------
  Program DceSrc = parseProgramOrDie(R"(var x;
    func f { block 0: x.na := 1; x.na := 2; ret; } thread f;)");
  Program DceTgt = parseProgramOrDie(R"(var x;
    func f { block 0: skip; x.na := 2; ret; } thread f;)");

  auto Idce = createDceInvariant();
  show("DCE with Idce:",
       checkThreadSimulation(DceTgt, DceSrc, FuncId("f"), *Idce, {}));
  show("DCE with Iid (wrong invariant):",
       checkThreadSimulation(DceTgt, DceSrc, FuncId("f"), *Iid, {}));

  // --- Fig 16 ablation ------------------------------------------------------
  std::vector<EnvAction> Tight{
      {"env writes x := 8 adjacently", VarId("x"), 8, true}};
  show("DCE with Idce, tight environment:",
       checkThreadSimulation(DceTgt, DceSrc, FuncId("f"), *Idce, Tight));
  auto NoGap = createDceInvariantNoGap();
  show("DCE with Idce-nogap, tight environment:",
       checkThreadSimulation(DceTgt, DceSrc, FuncId("f"), *NoGap, Tight));
  return 0;
}
