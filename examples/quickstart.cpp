//===- examples/quickstart.cpp - psopt in five minutes ---------------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// The workbench tour:
//   1. write a concurrent program in textual CSimpRTL;
//   2. enumerate all of its PS2.1 behaviors with the explorer;
//   3. run an optimization pass;
//   4. check that the optimized program refines the original.
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace psopt;

int main() {
  // Message passing through a release/acquire flag, with a dead store the
  // optimizer can remove.
  Program Source = parseProgramOrDie(R"(
    var data;
    var flag atomic;

    func producer {
    block 0:
      data.na := 11;      # dead: overwritten before the release
      data.na := 42;
      flag.rel := 1;
      ret;
    }

    func consumer {
    block 0:
      r := flag.acq;
      be r == 1, 1, 2;
    block 1:
      v := data.na;
      print(v);
      ret;
    block 2:
      print(-1);
      ret;
    }

    thread producer;
    thread consumer;
  )");

  std::printf("=== source ===\n%s\n", printProgram(Source).c_str());

  // Every observable behavior under the promising semantics (PS2.1).
  BehaviorSet B = exploreInterleaving(Source);
  std::printf("behaviors of the source:\n%s\n", B.str().c_str());

  // Dead code elimination with the release-aware liveness of §7.1.
  Program Target = createDCE()->run(Source);
  std::printf("=== after DCE ===\n%s\n", printProgram(Target).c_str());

  BehaviorSet TB = exploreInterleaving(Target);
  std::printf("behaviors of the target:\n%s\n", TB.str().c_str());

  RefinementResult R = checkRefinement(TB, B);
  std::printf("refinement target ⊆ source: %s%s\n",
              R.Holds ? "HOLDS" : "FAILS",
              R.Exact ? " (exhaustive)" : " (bounded)");
  if (!R.Holds)
    std::printf("counterexample: %s\n", R.CounterExample.c_str());
  return R.Holds ? 0 : 1;
}
