//===- examples/nonpreemptive.cpp - Thm 4.1 on the litmus suite --------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// Runs every litmus program under both machines, verifies behavioral
// equivalence (Thm 4.1) and reports the state-graph sizes — the "less
// non-determinism" the paper motivates the non-preemptive semantics with
// (§4). NA-heavy programs shrink; atomic-only programs can grow slightly
// because the NP machine tracks the running thread and the switch bit.
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "litmus/Litmus.h"

#include <cstdio>

using namespace psopt;

int main() {
  std::printf("%-16s %14s %14s %8s  %s\n", "litmus", "interleaving",
              "non-preemptive", "ratio", "equivalent?");
  std::printf("%-16s %14s %14s %8s\n", "", "(nodes)", "(nodes)", "");
  bool AllEq = true;
  for (const LitmusTest &T : allLitmusTests()) {
    StepConfig SC = T.SuggestedConfig();
    BehaviorSet Inter = exploreInterleaving(T.Prog, SC);
    BehaviorSet NP = exploreNonPreemptive(T.Prog, SC);
    RefinementResult R = checkEquivalence(NP, Inter);
    AllEq &= R.Holds;
    std::printf("%-16s %14llu %14llu %7.2fx  %s\n", T.Name.c_str(),
                static_cast<unsigned long long>(Inter.NodesVisited),
                static_cast<unsigned long long>(NP.NodesVisited),
                Inter.NodesVisited
                    ? static_cast<double>(NP.NodesVisited) /
                          static_cast<double>(Inter.NodesVisited)
                    : 0.0,
                R.Holds ? "yes" : "NO!");
  }
  std::printf("\nThm 4.1 (NP ≈ interleaving) on the suite: %s\n",
              AllEq ? "VERIFIED" : "VIOLATED");
  return AllEq ? 0 : 1;
}
