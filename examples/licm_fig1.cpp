//===- examples/licm_fig1.cpp - The Fig 1 story ----------------------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// Reproduces §1/Fig 1 end to end:
//  * naive LICM hoists the y read above an acquire spin — the refinement
//    checker finds the extra behavior (the target prints 0);
//  * with the spin relaxed, the hoist is sound — refinement holds;
//  * our LICM pass makes the right call in both cases: it refuses to hoist
//    across the acquire read and performs the relaxed-case hoist.
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "lang/Printer.h"
#include "litmus/Litmus.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace psopt;

static void report(const char *What, const Program &Src, const Program &Tgt) {
  BehaviorSet SB = exploreInterleaving(Src);
  BehaviorSet TB = exploreInterleaving(Tgt);
  RefinementResult R = checkRefinement(TB, SB);
  std::printf("%-34s refinement %s", What, R.Holds ? "HOLDS" : "FAILS");
  if (!R.Holds)
    std::printf("   [%s]", R.CounterExample.c_str());
  std::printf("\n");
}

int main() {
  const Program &AcqSrc = litmus("fig1_acq_src").Prog;
  const Program &AcqTgt = litmus("fig1_acq_tgt").Prog;
  const Program &RlxSrc = litmus("fig1_rlx_src").Prog;
  const Program &RlxTgt = litmus("fig1_rlx_tgt").Prog;

  std::printf("Fig 1 source (acquire spin):\n%s\n",
              printProgram(AcqSrc).c_str());

  std::printf("-- hand-written transformations --------------------------\n");
  report("hoist across ACQUIRE (Fig 1):", AcqSrc, AcqTgt);
  report("hoist across RELAXED:", RlxSrc, RlxTgt);

  std::printf("\n-- the LICM optimization pass ----------------------------\n");
  Program LicmAcq = createLICM()->run(AcqSrc);
  std::printf("LICM on the acquire version %s the program\n",
              LicmAcq == AcqSrc ? "did not change" : "CHANGED");
  report("LICM(acquire version):", AcqSrc, LicmAcq);

  Program LicmRlx = createLICM()->run(RlxSrc);
  std::printf("\nLICM on the relaxed version produced:\n%s\n",
              printFunction(FuncId("foo"), LicmRlx.function(FuncId("foo")))
                  .c_str());
  report("LICM(relaxed version):", RlxSrc, LicmRlx);

  std::printf("\n-- the unsafe pass (Fig 1's mistake) ---------------------\n");
  Program Bad = createUnsafeLICM()->run(AcqSrc);
  report("unsafe LICM(acquire version):", AcqSrc, Bad);
  return 0;
}
