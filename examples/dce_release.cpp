//===- examples/dce_release.cpp - The Fig 15 story --------------------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// Reproduces §7.1/Fig 15: eliminating a store across a release write leaks
// the location's stale initial value to a synchronized reader. Shows the
// liveness facts with and without the release rule, runs both DCE variants,
// and lets the refinement checker deliver the verdicts.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "lang/Printer.h"
#include "litmus/Litmus.h"
#include "opt/Pass.h"

#include <cstdio>

using namespace psopt;

int main() {
  const Program &Src = litmus("fig15_src").Prog;
  std::printf("Fig 15 source:\n%s\n", printProgram(Src).c_str());

  // Show the liveness annotations of Fig 15 (the blue column).
  {
    const Function &F = Src.function(FuncId("t1"));
    LiveUniverse U = LiveUniverse::of(Src);
    Cfg G = Cfg::build(F);
    LivenessResult LR = analyzeLiveness(F, G, U);
    std::printf("liveness after each instruction of t1 (release rule ON):\n");
    const BasicBlock &B = F.block(0);
    for (std::size_t I = 0; I < B.size(); ++I)
      std::printf("  %-16s %s\n", B.instructions()[I].str().c_str(),
                  LR.AfterInstr.at(0)[I].str().c_str());
  }

  BehaviorSet SB = exploreInterleaving(Src);
  std::printf("\nsource behaviors:\n%s\n", SB.str().c_str());

  // Correct DCE: keeps y := 2.
  Program Good = createDCE()->run(Src);
  std::printf("DCE output for t1:\n%s\n",
              printFunction(FuncId("t1"), Good.function(FuncId("t1")))
                  .c_str());
  RefinementResult RG =
      checkRefinement(exploreInterleaving(Good), SB);
  std::printf("refinement (correct DCE): %s\n\n",
              RG.Holds ? "HOLDS" : "FAILS");

  // Incorrect DCE: the red annotation of Fig 15.
  Program Bad = createUnsafeDCE()->run(Src);
  std::printf("unsafe DCE output for t1:\n%s\n",
              printFunction(FuncId("t1"), Bad.function(FuncId("t1")))
                  .c_str());
  BehaviorSet BB = exploreInterleaving(Bad);
  RefinementResult RB = checkRefinement(BB, SB);
  std::printf("refinement (unsafe DCE): %s\n", RB.Holds ? "HOLDS" : "FAILS");
  if (!RB.Holds)
    std::printf("counterexample: %s\n      (g observes the eliminated "
                "store's absence)\n",
                RB.CounterExample.c_str());
  return 0;
}
