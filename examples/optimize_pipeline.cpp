//===- examples/optimize_pipeline.cpp - A realistic optimization pipeline ----------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// A producer/consumer handoff, optimized with the full verified pipeline
// (ConstProp → DCE → CSE → LICM), with every intermediate result checked
// for refinement and ww-race-freedom preservation — the workflow Lm 6.2's
// vertical composition justifies. Each pass has something to do:
//
//   * ConstProp folds the staging computation 6 * 7;
//   * DCE kills the store that is overwritten before the release;
//   * CSE forwards the staged value instead of re-loading it;
//   * LICM hoists the loop-invariant read out of the consumer's loop.
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"
#include "explore/Refinement.h"
#include "lang/Printer.h"
#include "lang/Parser.h"
#include "opt/Pass.h"
#include "race/WWRace.h"
#include "support/Statistic.h"

#include <cstdio>

using namespace psopt;

int main() {
  Program Source = parseProgramOrDie(R"(
    var slot;            # the handoff cell
    var scratch;         # producer-local staging
    var flag atomic;

    func producer {
    block 0:
      r1 := 6;
      r2 := r1 * 7;      # ConstProp folds this to 42
      scratch.na := 13;  # DCE: dead, overwritten before the release
      scratch.na := r2;
      v1 := scratch.na;  # CSE: forwarded from the store
      slot.na := v1;
      flag.rel := 1;
      ret;
    }

    func consumer {
    block 0:
      r := flag.acq;
      be r == 1, 1, 3;
    block 1:            # sum the slot twice; the read is loop-invariant
      i := 0; acc := 0; jmp 2;
    block 2:
      v := slot.na;      # LICM hoists this read
      acc := acc + v;
      i := i + 1;
      be i < 2, 2, 4;
    block 3:
      print(-1);
      ret;
    block 4:
      print(acc);
      ret;
    }

    thread producer;
    thread consumer;
  )");

  std::printf("=== source ===\n%s\n", printProgram(Source).c_str());

  // Promise-free exploration suffices here: none of the interesting
  // behaviors of this program depend on promised writes.
  StepConfig SC;
  SC.EnablePromises = false;

  BehaviorSet SrcB = exploreInterleaving(Source, SC);
  std::printf("source behaviors:\n%s\n", SrcB.str().c_str());
  RaceCheckResult SrcRace = checkWWRaceFreedom(Source, SC);
  std::printf("source ww-race-free: %s\n\n", SrcRace ? "yes" : "NO");

  Program Cur = Source;
  for (const auto &P : createAllVerifiedPasses()) {
    Program Next = P->run(Cur);
    BehaviorSet NB = exploreInterleaving(Next, SC);
    RefinementResult R = checkRefinement(NB, SrcB);
    RaceCheckResult Race = checkWWRaceFreedom(Next, SC);
    std::printf("after %-10s refinement vs source: %-6s ww-RF: %s\n",
                P->name(), R.Holds ? "HOLDS" : "FAILS",
                Race ? "preserved" : "BROKEN");
    Cur = std::move(Next);
  }

  std::printf("\n=== fully optimized ===\n%s\n", printProgram(Cur).c_str());
  std::printf("pass statistics:\n%s", formatStatistics().c_str());
  return 0;
}
