//===- examples/dekker.cpp - Mutual exclusion meets weak memory --------------------===//
//
// Part of psopt.
//
//===----------------------------------------------------------------------===//
//
// A domain scenario beyond the paper's figures: Peterson/Dekker-style
// flag-based mutual exclusion is *broken* under the promising semantics —
// it relies on store-to-load ordering that even release/acquire does not
// provide (both threads can read the other's flag as 0, SB-style, and
// enter the critical section together).
//
// The workbench catches the bug twice over:
//  * the ww-race detector flags the now-unprotected critical-section
//    writes (Fig 11's predicate on a real algorithm);
//  * exhaustive exploration exhibits the mutual-exclusion violation, and
//    the witness reconstructor prints the interleaving that breaks it.
//
// A CAS-based lock (litmus test `spinlock`) is the correct alternative;
// its counter is verified race-free.
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"
#include "explore/Witness.h"
#include "lang/Parser.h"
#include "litmus/Litmus.h"
#include "race/WWRace.h"

#include <cstdio>

using namespace psopt;

int main() {
  // Flag-based mutual exclusion with rel/acq flags. Each thread raises its
  // flag, checks the other's, and enters only if the other flag is down
  // (no contention path — real Dekker retries; for exhaustiveness we just
  // print -1 when backing off). In the critical section both increment
  // the non-atomic counter and print it.
  Program Dekker = parseProgramOrDie(R"(
    var count;
    var flag0 atomic; var flag1 atomic;

    func t0 {
    block 0:
      flag0.rel := 1;
      r := flag1.acq;
      be r == 0, 1, 2;
    block 1:                       # critical section
      c := count.na;
      count.na := c + 1;
      print(c + 1);
      ret;
    block 2:
      print(-1);                   # backed off
      ret;
    }

    func t1 {
    block 0:
      flag1.rel := 1;
      r := flag0.acq;
      be r == 0, 1, 2;
    block 1:
      c := count.na;
      count.na := c + 1;
      print(c + 1);
      ret;
    block 2:
      print(-1);
      ret;
    }

    thread t0; thread t1;
  )");

  std::printf("Flag-based mutual exclusion under PS2.1\n");
  std::printf("=======================================\n\n");

  // 1. The race detector: the critical-section writes to `count` race.
  RaceCheckResult Race = checkWWRaceFreedom(Dekker);
  std::printf("ww-race check: %s\n",
              Race.RaceFree ? "race-free (unexpected!)" : "RACE FOUND");
  if (Race.Witness)
    std::printf("  %s\n", Race.Witness->Description.c_str());

  // 2. The behaviors: both threads printing a counter value of 1 means
  //    both entered the critical section reading count = 0.
  BehaviorSet B = exploreInterleaving(Dekker);
  std::printf("\nbehaviors (%s):\n%s",
              B.Exhausted ? "exhaustive" : "bounded", B.str().c_str());
  bool MutualExclusionBroken = B.hasDoneMultiset({1, 1});
  std::printf("\nmutual exclusion violated (both print 1): %s\n",
              MutualExclusionBroken ? "YES" : "no");

  // 3. The schedule that breaks it.
  if (MutualExclusionBroken) {
    InterleavingMachine M(Dekker, StepConfig{});
    if (auto W = findWitness(M, {1, 1}, Behavior::End::Done)) {
      std::printf("\nwitness schedule (SB-shaped flag reads):\n%s",
                  W->str().c_str());
    }
  }

  // 4. The fix: the CAS spinlock from the litmus registry.
  const LitmusTest &Lock = litmus("spinlock");
  RaceCheckResult LockRace =
      checkWWRaceFreedom(Lock.Prog, Lock.SuggestedConfig());
  BehaviorSet LockB = exploreInterleaving(Lock.Prog, Lock.SuggestedConfig());
  std::printf("\nthe CAS spinlock alternative: ww-race-free=%s, "
              "increments serialize=%s\n",
              LockRace ? "yes" : "no",
              LockB.hasDoneMultiset({1, 2}) && !LockB.hasDoneMultiset({1, 1})
                  ? "yes"
                  : "no");
  return 0;
}
